//! # HFetch — hierarchical, data-centric, server-push prefetching
//!
//! A from-scratch Rust reproduction of *"HFetch: Hierarchical Data
//! Prefetching for Scientific Workflows in Multi-Tiered Storage
//! Environments"* (Devarajan, Kougkas, Sun — IEEE IPDPS 2020), including
//! every substrate the paper depends on and every baseline it evaluates
//! against.
//!
//! ## Quick start
//!
//! ```
//! use hfetch::prelude::*;
//! use std::sync::Arc;
//!
//! // A deep memory & storage hierarchy: RAM → NVMe → burst buffers → PFS.
//! let hierarchy = Hierarchy::with_budgets(mib(64), mib(128), mib(256));
//!
//! // Start an in-memory HFetch server (real threads: event queue,
//! // monitor daemons, placement engine, I/O clients).
//! let server = HFetchServer::in_memory(HFetchConfig::default(), hierarchy);
//!
//! // Stage a dataset on the backing store and read it through an agent.
//! let shim = Arc::clone(server.shim());
//! shim.stage_file("/data/demo", mib(8)).unwrap();
//! let agent = HFetchAgent::new(
//!     Arc::clone(server.inner()),
//!     shim,
//!     ProcessId(0),
//!     AppId(0),
//! );
//! let handle = agent.open("/data/demo");
//! server.quiesce(); // let the epoch-staging prefetch land
//! let bytes = agent.read(&handle, ByteRange::new(0, 4096)).unwrap();
//! assert_eq!(bytes.len(), 4096);
//! agent.close(&handle);
//! server.shutdown();
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`tiers`] | storage substrate: tier specs, hierarchy, capacity, backends, byte ranges |
//! | [`events`] | enriched inotify-equivalent event feed, queue, monitor daemons, I/O shim |
//! | [`dht`] | HCL-equivalent distributed hashmap with WAL crash recovery |
//! | [`sim`] | discrete-event cluster simulator (devices, scripts, policies, reports) |
//! | [`hfetch_core`] | the paper's contribution: auditor, Eq. 1 scoring, heatmaps, Algorithm 1 engine, server, agents |
//! | [`baselines`] | serial/parallel, in-memory optimal/naive, app-centric, Stacker-like, KnowAc-like |
//! | [`workloads`] | Fig. 5 patterns, pipelines, Montage and WRF workflow models |
//!
//! The benchmark harness regenerating every figure of the paper lives in
//! `crates/bench` (`cargo run -p hfetch-bench --release --bin all_figures`).

pub use baselines;
pub use dht;
pub use events;
pub use hfetch_core;
pub use sim;
pub use tiers;
pub use workloads;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use baselines::{
        AppCentricPrefetcher, InMemoryNaive, InMemoryOptimal, KnowAcLike, ParallelPrefetcher,
        SerialPrefetcher, StackerLike,
    };
    pub use hfetch_core::{
        Auditor, FileHeatmap, HFetchAgent, HFetchConfig, HFetchPolicy, HFetchServer,
        PlacementEngine, Reactiveness, ScoreParams,
    };
    pub use sim::{NoPrefetch, Op, PrefetchPolicy, RankScript, ScriptBuilder, SimConfig, SimReport, Simulation};
    pub use sim::script::SimFile;
    pub use tiers::ids::{AppId, FileId, NodeId, ProcessId, SegmentId, TierId};
    pub use tiers::range::ByteRange;
    pub use tiers::time::{Clock, ManualClock, Timestamp, WallClock};
    pub use tiers::units::{fmt_bytes, fmt_throughput, gib, kib, mib, GIB, KIB, MIB};
    pub use tiers::{Hierarchy, TierKind, TierSpec};
    pub use workloads::{AccessPattern, MontageWorkflow, PatternWorkload, PipelineWorkflow, WrfWorkflow};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_types_compose() {
        let h = Hierarchy::ares_reference();
        assert_eq!(h.cache_tiers(), 3);
        let cfg = HFetchConfig::default();
        cfg.validate();
        let _policy = HFetchPolicy::new(cfg, &h);
    }
}
