//! End-to-end tests of the real-thread HFetch server: multiple agents,
//! epochs, data correctness, invalidation, and hierarchical promotion.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use hfetch::prelude::*;

fn expected(offset: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((offset as usize + i) % 251) as u8).collect()
}

fn server() -> HFetchServer {
    HFetchServer::in_memory(
        HFetchConfig::default(),
        Hierarchy::with_budgets(mib(4), mib(8), mib(16)),
    )
}

#[test]
fn bytes_are_correct_regardless_of_hit_or_miss() {
    let server = server();
    let shim = Arc::clone(server.shim());
    shim.stage_file("/data/a", mib(6)).unwrap();
    let agent = HFetchAgent::new(Arc::clone(server.inner()), shim, ProcessId(0), AppId(0));

    let h = agent.open("/data/a");
    // Reads immediately (racing the epoch staging) and after quiesce must
    // both return the exact staged pattern.
    for &(off, len) in &[(0u64, 4096usize), (123_456, 10_000), (mib(5), 4096)] {
        let data = agent.read(&h, ByteRange::new(off, len as u64)).unwrap();
        assert_eq!(&data[..], &expected(off, len)[..], "pre-quiesce read at {off}");
    }
    server.quiesce();
    for &(off, len) in &[(0u64, 4096usize), (mib(3), 65_536), (mib(6) - 100, 100)] {
        let data = agent.read(&h, ByteRange::new(off, len as u64)).unwrap();
        assert_eq!(&data[..], &expected(off, len)[..], "post-quiesce read at {off}");
    }
    agent.close(&h);
    server.shutdown();
}

#[test]
fn second_reader_benefits_from_first_readers_heat() {
    let server = server();
    let shim = Arc::clone(server.shim());
    shim.stage_file("/shared", mib(3)).unwrap();

    // Reader 1 (app 0) streams the file, heating it.
    let a1 = HFetchAgent::new(Arc::clone(server.inner()), Arc::clone(&shim), ProcessId(0), AppId(0));
    let h1 = a1.open("/shared");
    server.quiesce();
    for i in 0..3 {
        let _ = a1.read(&h1, ByteRange::new(mib(i), mib(1))).unwrap();
    }
    server.quiesce();

    // Reader 2 (a different application!) reads the same data: the
    // data-centric cache serves it without re-reading the PFS.
    let a2 = HFetchAgent::new(Arc::clone(server.inner()), Arc::clone(&shim), ProcessId(1), AppId(1));
    let h2 = a2.open("/shared");
    for i in 0..3 {
        let data = a2.read(&h2, ByteRange::new(mib(i), mib(1))).unwrap();
        assert_eq!(data.len(), mib(1) as usize);
    }
    let ratio = a2.stats().hit_ratio().unwrap();
    assert!(ratio > 0.9, "cross-application hit ratio {ratio}");

    a1.close(&h1);
    a2.close(&h2);
    server.shutdown();
}

#[test]
fn epoch_end_eviction_frees_the_hierarchy() {
    let server = server();
    let shim = Arc::clone(server.shim());
    shim.stage_file("/tmpfile", mib(2)).unwrap();
    let agent = HFetchAgent::new(Arc::clone(server.inner()), Arc::clone(&shim), ProcessId(0), AppId(0));
    let h = agent.open("/tmpfile");
    server.quiesce();
    let file = agent.file_id("/tmpfile").unwrap();
    let cached: u64 =
        (0..3u16).map(|i| server.inner().backend(TierId(i)).resident_bytes(file)).sum();
    assert_eq!(cached, mib(2), "fully staged during the epoch");
    agent.close(&h);
    server.quiesce();
    let cached: u64 =
        (0..3u16).map(|i| server.inner().backend(TierId(i)).resident_bytes(file)).sum();
    assert_eq!(cached, 0, "dropped when the last reader closed");
    server.shutdown();
}

#[test]
fn writers_invalidate_and_readers_see_new_data() {
    let server = server();
    let shim = Arc::clone(server.shim());
    shim.stage_file("/mut", mib(1)).unwrap();
    let reader = HFetchAgent::new(Arc::clone(server.inner()), Arc::clone(&shim), ProcessId(0), AppId(0));
    let h = reader.open("/mut");
    server.quiesce();
    // Warm read.
    let before = reader.read(&h, ByteRange::new(0, 16)).unwrap();
    assert_eq!(&before[..], &expected(0, 16)[..]);

    // An external writer updates the region.
    let (w, _) = shim.fopen("/mut", hfetch::events::shim::OpenMode::Write, ProcessId(9), AppId(9));
    shim.fwrite_at(&w, 0, &[0xAB; 16]).unwrap();
    shim.fclose(&w);
    server.quiesce();

    let after = reader.read(&h, ByteRange::new(0, 16)).unwrap();
    assert_eq!(&after[..], &[0xAB; 16], "stale cache must not serve old bytes");
    reader.close(&h);
    server.shutdown();
}

#[test]
fn hammered_region_is_promoted_to_ram() {
    let server = server();
    let shim = Arc::clone(server.shim());
    shim.stage_file("/hot", mib(16)).unwrap(); // larger than RAM+NVMe
    let agent = HFetchAgent::new(Arc::clone(server.inner()), Arc::clone(&shim), ProcessId(0), AppId(0));
    let h = agent.open("/hot");
    server.quiesce();
    let file = agent.file_id("/hot").unwrap();
    let hot = ByteRange::new(mib(15), mib(1));
    for _ in 0..10 {
        let _ = agent.read(&h, hot).unwrap();
    }
    server.quiesce();
    assert!(
        server.inner().backend(TierId(0)).resident(file, hot),
        "hot region must be promoted to the RAM tier"
    );
    agent.close(&h);
    server.shutdown();
}

#[test]
fn many_agents_concurrently() {
    let server = HFetchServer::in_memory(
        HFetchConfig::default(),
        Hierarchy::with_budgets(mib(8), mib(16), mib(32)),
    );
    let shim = Arc::clone(server.shim());
    shim.stage_file("/big", mib(16)).unwrap();
    std::thread::scope(|s| {
        for p in 0..8u32 {
            let inner = Arc::clone(server.inner());
            let shim = Arc::clone(&shim);
            s.spawn(move || {
                let agent = HFetchAgent::new(inner, shim, ProcessId(p), AppId(p % 2));
                let h = agent.open("/big");
                let base = (p as u64 % 4) * mib(4);
                for i in 0..16 {
                    let off = base + (i % 4) * mib(1);
                    let data = agent.read(&h, ByteRange::new(off, 65_536)).unwrap();
                    assert_eq!(&data[..], &expected(off, 65_536)[..]);
                }
                agent.close(&h);
            });
        }
    });
    server.quiesce();
    let stats = server.stats();
    let total =
        stats.hit_bytes.load(Ordering::Relaxed) + stats.miss_bytes.load(Ordering::Relaxed);
    assert_eq!(total, 8 * 16 * 65_536, "every byte accounted as hit or miss");
    server.shutdown();
}
