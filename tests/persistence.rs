//! Persistence integration: WAL-backed segment metadata survives a
//! simulated power-down, and heatmap history carries across server
//! instances (the paper's "fault tolerance in case of power-downs" and
//! "store the file heatmaps on disk").

use std::sync::Arc;

use hfetch::dht::{DistributedMap, DurableMap};
use hfetch::hfetch_core::heatmap::{FileHeatmap, HeatmapStore};
use hfetch::prelude::*;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hfetch-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn segment_metadata_survives_power_down() {
    let dir = temp_dir("wal");
    let path = dir.join("segments.wal");
    // A (segment index → score bits) metadata table, durably logged.
    {
        let map: DurableMap<u64, u64> = DurableMap::create(&path, (2, 8)).unwrap();
        for seg in 0..500u64 {
            map.insert(seg, (seg as f64 * 0.5).to_bits()).unwrap();
        }
        // Concurrent updates from "multiple ranks".
        let map = Arc::new(map);
        std::thread::scope(|s| {
            for t in 0..4 {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    for seg in (t * 100)..(t * 100 + 100) {
                        map.update_with(seg, || 0, |v| *v = v.wrapping_add(1)).unwrap();
                    }
                });
            }
        });
        map.checkpoint().unwrap();
        map.insert(9999, 42).unwrap();
    } // power-down
    let (map, replayed): (DurableMap<u64, u64>, usize) =
        DurableMap::recover(&path, (2, 8)).unwrap();
    assert_eq!(replayed, 501, "500 checkpointed + 1 appended");
    assert_eq!(map.map().len(), 501);
    assert_eq!(map.map().get(&9999), Some(42));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn heatmaps_survive_across_store_instances() {
    let dir = temp_dir("heatmap");
    let file = FileId(7);
    {
        let store = HeatmapStore::on_disk(&dir).unwrap();
        let mut h = FileHeatmap::cold(file, MIB, 8);
        h.scores[3] = 9.5;
        h.saved_at = Timestamp::from_secs(10);
        store.save(h);
    }
    let store = HeatmapStore::on_disk(&dir).unwrap();
    let loaded = store.load(file).expect("heatmap reloaded from disk");
    assert_eq!(loaded.scores[3], 9.5);
    assert_eq!(loaded.hottest_first()[0], 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn auditor_heatmap_round_trips_through_store() {
    let cfg = HFetchConfig::default();
    let store = Arc::new(HeatmapStore::in_memory());
    let auditor = hfetch::hfetch_core::Auditor::with_heatmaps(cfg.clone(), Arc::clone(&store));
    let file = FileId(1);
    auditor.set_file_size(file, mib(8));
    auditor.start_epoch(file, Timestamp::from_secs(1));
    for p in 0..6 {
        auditor.observe_read(
            file,
            ByteRange::new(mib(2), MIB),
            ProcessId(p),
            Timestamp::from_secs(1),
        );
    }
    assert!(auditor.end_epoch(file, Timestamp::from_secs(2)), "last closer persists");
    let saved = store.load(file).expect("persisted on epoch end");
    assert_eq!(saved.hottest_first()[0], 2, "segment 2 is the hottest");

    // A fresh auditor sharing the store stages the hot segment first on
    // re-open (the history-based warm start without offline profiling).
    let auditor2 = hfetch::hfetch_core::Auditor::with_heatmaps(cfg, store);
    auditor2.set_file_size(file, mib(8));
    auditor2.start_epoch(file, Timestamp::from_secs(3));
    let updates = auditor2.drain_updates();
    let hottest = updates
        .iter()
        .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
        .unwrap();
    assert_eq!(hottest.segment.index, 2);
}

#[test]
fn distributed_map_shards_by_node() {
    let map: DistributedMap<SegmentId, f64> = DistributedMap::with_topology(4, 8);
    for i in 0..4000u64 {
        map.insert(SegmentId::new(FileId(i % 10), i), i as f64);
    }
    let loads = map.node_loads();
    assert_eq!(loads.iter().sum::<usize>(), 4000);
    for load in loads {
        assert!((600..=1400).contains(&load), "node load {load} imbalanced");
    }
}
