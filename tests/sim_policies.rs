//! Cross-crate integration: every prefetch policy on every workload class
//! runs to completion under the simulator with sane accounting, and the
//! headline qualitative results hold.

use std::time::Duration;

use hfetch::prelude::*;

fn hierarchy() -> Hierarchy {
    Hierarchy::with_budgets(mib(32), mib(64), mib(128))
}

fn policies(scripts: &[RankScript]) -> Vec<Box<dyn PrefetchPolicy>> {
    vec![
        Box::new(NoPrefetch),
        Box::new(SerialPrefetcher::new(4, MIB, TierId(0))),
        Box::new(ParallelPrefetcher::new(4, 4, MIB, TierId(0))),
        Box::new(InMemoryNaive::new(4, MIB, 8)),
        Box::new(InMemoryOptimal::new(mib(32), 16, 4, MIB, 2)),
        Box::new(AppCentricPrefetcher::new(4, MIB, TierId(0), 8)),
        Box::new(StackerLike::new(MIB, TierId(0), 2, 8)),
        Box::new(KnowAcLike::from_scripts(scripts, 4, MIB, TierId(0), 8)),
        Box::new(HFetchPolicy::new(HFetchConfig::default(), &hierarchy())),
    ]
}

fn check_accounting(report: &SimReport, scripts: &[RankScript]) {
    let requested: u64 = scripts.iter().map(|s| s.read_bytes()).sum();
    assert!(report.bytes_requested <= requested);
    assert_eq!(
        report.hit_bytes() + report.miss_bytes(),
        report.bytes_requested,
        "every requested byte is a hit or a miss ({})",
        report.policy
    );
    assert_eq!(report.rank_finish.len(), scripts.len());
    assert!(report.makespan >= Duration::ZERO);
    // Cache tiers never exceed their budgets.
    let h = hierarchy();
    for (tier, spec) in h.iter_cache() {
        assert!(
            report.tiers[tier.index()].peak_bytes <= spec.capacity,
            "{}: tier {tier} over budget",
            report.policy
        );
    }
}

#[test]
fn every_policy_completes_every_workload_class() {
    let workloads: Vec<(&str, Vec<hfetch::sim::script::SimFile>, Vec<RankScript>)> = vec![
        {
            let w = PatternWorkload {
                pattern: AccessPattern::Repetitive { laps: 2 },
                processes: 16,
                apps: 4,
                dataset: mib(64),
                request: MIB,
                requests_per_process: 8,
                compute: Duration::from_millis(5),
                seed: 1,
            };
            let (f, s) = w.build();
            ("patterns", f, s)
        },
        {
            let w = MontageWorkflow {
                processes: 16,
                io_per_step: MIB,
                time_steps: 16,
                compute: Duration::from_millis(5),
                seed: 2,
            };
            let (f, s) = w.build();
            ("montage", f, s)
        },
        {
            let w = WrfWorkflow {
                processes: 16,
                bytes_per_step: mib(32),
                time_steps: 4,
                request: MIB,
                iterations: 2,
                compute: Duration::from_millis(5),
            };
            let (f, s) = w.build();
            ("wrf", f, s)
        },
        {
            let w = PipelineWorkflow {
                producers: 4,
                consumer_apps: 2,
                consumers_per_app: 4,
                stages: 2,
                write_per_producer: mib(4),
                read_passes: 2,
                request: MIB,
                compute: Duration::from_millis(5),
            };
            let (f, s) = w.build();
            ("pipeline", f, s)
        },
    ];

    for (name, files, scripts) in workloads {
        for policy in policies(&scripts) {
            let policy_name = policy.name().to_string();
            let (report, _) = Simulation::new(
                SimConfig::new(hierarchy()),
                files.clone(),
                scripts.clone(),
                policy,
            )
            .run();
            check_accounting(&report, &scripts);
            assert!(
                report.seconds() > 0.0,
                "{name}/{policy_name}: zero makespan is suspicious"
            );
        }
    }
}

#[test]
fn prefetching_beats_none_on_reuse_heavy_workload() {
    let w = PatternWorkload {
        pattern: AccessPattern::Repetitive { laps: 4 },
        processes: 16,
        apps: 4,
        dataset: mib(128),
        request: MIB,
        requests_per_process: 32,
        compute: Duration::from_millis(10),
        seed: 3,
    };
    let (files, scripts) = w.build();
    let run = |p: Box<dyn PrefetchPolicy>| {
        Simulation::new(SimConfig::new(hierarchy()), files.clone(), scripts.clone(), p)
            .run()
            .0
    };
    let none = run(Box::new(NoPrefetch));
    let hfetch = run(Box::new(HFetchPolicy::new(HFetchConfig::default(), &hierarchy())));
    assert!(hfetch.hit_ratio().unwrap() > 0.5, "{:?}", hfetch.hit_ratio());
    assert!(
        hfetch.seconds() < none.seconds(),
        "hfetch {} vs none {}",
        hfetch.seconds(),
        none.seconds()
    );
}

#[test]
fn simulation_is_deterministic_across_policies() {
    let w = MontageWorkflow {
        processes: 12,
        io_per_step: MIB,
        time_steps: 16,
        compute: Duration::from_millis(3),
        seed: 9,
    };
    for build_policy in [
        || Box::new(NoPrefetch) as Box<dyn PrefetchPolicy>,
        || Box::new(HFetchPolicy::new(HFetchConfig::default(), &hierarchy())) as _,
        || Box::new(StackerLike::new(MIB, TierId(0), 2, 8)) as _,
    ] {
        let (f1, s1) = w.build();
        let (r1, _) =
            Simulation::new(SimConfig::new(hierarchy()), f1, s1, build_policy()).run();
        let (f2, s2) = w.build();
        let (r2, _) =
            Simulation::new(SimConfig::new(hierarchy()), f2, s2, build_policy()).run();
        assert_eq!(r1.makespan, r2.makespan, "{}", r1.policy);
        assert_eq!(r1.hit_bytes(), r2.hit_bytes());
        assert_eq!(r1.prefetch_bytes, r2.prefetch_bytes);
        assert_eq!(r1.rank_finish, r2.rank_finish);
    }
}

#[test]
fn knowac_profile_cost_is_the_tradeoff() {
    // KnowAc's read time beats Stacker's, but adding the profile run
    // (one unprefetched execution) flips the end-to-end comparison —
    // the paper's Fig. 6 structure.
    let w = MontageWorkflow {
        processes: 32,
        io_per_step: MIB,
        time_steps: 16,
        compute: Duration::from_millis(8),
        seed: 11,
    };
    let (files, scripts) = w.build();
    let run = |p: Box<dyn PrefetchPolicy>| {
        Simulation::new(SimConfig::new(hierarchy()), files.clone(), scripts.clone(), p)
            .run()
            .0
    };
    let none = run(Box::new(NoPrefetch));
    let knowac = run(Box::new(KnowAcLike::from_scripts(&scripts, 4, MIB, TierId(0), 16)));
    let end_to_end = knowac.seconds() + none.seconds();
    assert!(
        end_to_end > none.seconds(),
        "profile cost must make knowac lose end-to-end to plain reads"
    );
    assert!(knowac.hit_ratio().unwrap() > 0.3, "{:?}", knowac.hit_ratio());
}
