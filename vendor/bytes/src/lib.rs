//! Offline shim for the `bytes` API subset this workspace uses.
//!
//! `Bytes` is a cheaply-cloneable immutable byte buffer (`Arc<[u8]>` under
//! the hood) and `BytesMut` a growable mutable one that can be frozen into a
//! `Bytes`. The real crate's zero-copy slicing machinery is not needed by
//! this workspace, so it is not reproduced.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { data: Arc::from(&[][..]) }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl<T: AsRef<[u8]> + ?Sized> PartialEq<T> for Bytes {
    fn eq(&self, other: &T) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

/// A growable, mutable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Creates a buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        Self { data: vec![0; len] }
    }

    /// Appends `data` to the buffer.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] (consumes the buffer).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_round_trip() {
        let mut b = BytesMut::zeroed(4);
        b[1..3].copy_from_slice(&[7, 8]);
        let frozen = b.freeze();
        assert_eq!(frozen, [0, 7, 8, 0]);
        assert_eq!(frozen.len(), 4);
    }

    #[test]
    fn constructors() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"abc"), b"abc");
        assert_eq!(Bytes::from(vec![1, 2]).to_vec(), vec![1, 2]);
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![9; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }
}
