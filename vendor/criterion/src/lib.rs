//! Offline shim for the `criterion` API subset this workspace uses.
//!
//! Provides `Criterion`, benchmark groups, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a warmup pass followed by timed batches sized to a
//! per-sample time budget; results print as mean time per iteration plus
//! throughput when configured. `--test` on the command line (as passed by
//! `cargo bench -- --test` or verify scripts) runs each benchmark exactly
//! once for plumbing checks; positional arguments filter benchmarks by
//! substring, mirroring upstream.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export point so `criterion::black_box` works like upstream.
pub use std::hint::black_box;

/// Per-sample time budget (full mode).
const SAMPLE_BUDGET: Duration = Duration::from_millis(40);
/// Warmup budget per benchmark (full mode).
const WARMUP_BUDGET: Duration = Duration::from_millis(120);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filters: Vec<String>,
    test_mode: bool,
}

impl Criterion {
    /// Applies command-line arguments: `--test` switches to one-iteration
    /// plumbing mode; non-flag arguments become name filters. Unknown flags
    /// are ignored so `cargo bench` pass-through options don't break runs.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                self.test_mode = true;
            } else if !arg.starts_with('-') {
                self.filters.push(arg);
            }
        }
        self
    }

    /// Forces plumbing mode regardless of arguments.
    pub fn with_test_mode(mut self, on: bool) -> Self {
        self.test_mode = on;
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_name.contains(f))
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: 10 }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        if self.matches(name) {
            run_one(name, None, test_mode, f);
        }
        self
    }
}

/// Identifies a parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier, like upstream.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (events, operations) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and throughput config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    #[allow(dead_code)] // accepted for API compatibility; sampling is time-budgeted
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for compatibility; sampling here is
    /// time-budgeted rather than count-based).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares how many units one iteration processes.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure under `group_name/name`.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        if self.criterion.matches(&full) {
            run_one(&full, self.throughput, self.criterion.test_mode, f);
        }
        self
    }

    /// Benchmarks a closure with an input under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            run_one(&full, self.throughput, self.criterion.test_mode, |b| f(b, input));
        }
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code under
/// test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One complete measurement: result of running a closure under the harness.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Iterations in the final sample.
    pub iters: u64,
}

/// Measures a bench closure outside any `Criterion` plumbing. Used by
/// harness binaries that want raw numbers (e.g. to write BENCH_*.json).
pub fn measure<F: FnMut(&mut Bencher)>(test_mode: bool, mut f: F) -> Measurement {
    if test_mode {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        return Measurement { mean: b.elapsed.max(Duration::from_nanos(1)), iters: 1 };
    }
    // Warmup: grow the iteration count until the warmup budget is spent,
    // which also estimates per-iteration cost.
    let mut iters: u64 = 1;
    let mut per_iter;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter = b.elapsed.div_f64(iters as f64).max(Duration::from_nanos(1));
        if b.elapsed >= WARMUP_BUDGET || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(4).min(1 << 20);
    }
    // Measurement: three samples sized to the per-sample budget; keep the
    // fastest mean (least scheduling noise).
    let sample_iters =
        (SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let mut b = Bencher { iters: sample_iters, elapsed: Duration::ZERO };
        f(&mut b);
        let mean = b.elapsed.div_f64(sample_iters as f64);
        best = best.min(mean);
    }
    Measurement { mean: best.max(Duration::from_nanos(1)), iters: sample_iters }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, test_mode: bool, f: F) {
    let m = measure(test_mode, f);
    let mut line = format!("{name:<56} time: {}", fmt_duration(m.mean));
    if let Some(t) = throughput {
        let (units, label) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = units as f64 / m.mean.as_secs_f64();
        let _ = write!(line, "  thrpt: {} {label}", fmt_rate(rate));
    }
    if test_mode {
        line.push_str("  [test mode: 1 iter]");
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Bundles benchmark functions into a runnable group, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut calls = 0u64;
        let m = measure(true, |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(m.iters, 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().with_test_mode(true);
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn full_measurement_reports_positive_time() {
        let m = measure(false, |b| b.iter(|| black_box((0..64u64).sum::<u64>())));
        assert!(m.mean > Duration::ZERO);
        assert!(m.iters >= 1);
    }
}
