//! Multi-producer multi-consumer channels (bounded and unbounded).
//!
//! A `Mutex<VecDeque>` plus two condvars ("not empty" / "not full") gives the
//! blocking behaviour; sender/receiver reference counts give crossbeam's
//! disconnection semantics.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// All receivers have been dropped.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

struct Chan<T> {
    queue: Mutex<VecDeque<T>>,
    /// `None` = unbounded.
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Chan<T> {
    fn new(cap: Option<usize>) -> Arc<Self> {
        Arc::new(Self {
            queue: Mutex::new(VecDeque::new()),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        })
    }

    fn is_full(&self, len: usize) -> bool {
        self.cap.is_some_and(|c| len >= c)
    }
}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel. Cloneable, unlike std's mpsc receiver.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Chan::new(None);
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

/// Creates a bounded MPMC channel with capacity `cap`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Chan::new(Some(cap));
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Sends a message, blocking while a bounded channel is full. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut queue = self.chan.queue.lock().unwrap();
        loop {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            if !self.chan.is_full(queue.len()) {
                queue.push_back(value);
                drop(queue);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            queue = self.chan.not_full.wait(queue).unwrap();
        }
    }

    /// Attempts to send without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut queue = self.chan.queue.lock().unwrap();
        if self.chan.receivers.load(Ordering::Acquire) == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if self.chan.is_full(queue.len()) {
            return Err(TrySendError::Full(value));
        }
        queue.push_back(value);
        drop(queue);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.queue.lock().unwrap().len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives or all senders drop.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.chan.queue.lock().unwrap();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self.chan.not_empty.wait(queue).unwrap();
        }
    }

    /// Receives with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.chan.queue.lock().unwrap();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, res) = self.chan.not_empty.wait_timeout(queue, deadline - now).unwrap();
            queue = q;
            if res.timed_out() && queue.is_empty() {
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Attempts to receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.chan.queue.lock().unwrap();
        if let Some(v) = queue.pop_front() {
            drop(queue);
            self.chan.not_full.notify_one();
            return Ok(v);
        }
        if self.chan.senders.load(Ordering::Acquire) == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.queue.lock().unwrap().len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.senders.fetch_add(1, Ordering::AcqRel);
        Self { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.receivers.fetch_add(1, Ordering::AcqRel);
        Self { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake blocked receivers so they observe disconnect.
            let _guard = self.chan.queue.lock().unwrap();
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.chan.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last receiver: wake blocked senders so they observe disconnect.
            let _guard = self.chan.queue.lock().unwrap();
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_full_and_disconnect() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let h = std::thread::spawn(move || tx.send(7).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
        h.join().unwrap();
    }

    #[test]
    fn disconnect_unblocks_receiver() {
        let (tx, rx) = unbounded::<u32>();
        let h = std::thread::spawn(move || rx.recv());
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn mpmc_all_messages_arrive_once() {
        let (tx, rx) = bounded(8);
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000);
    }
}
