//! Offline shim for the `crossbeam` API subset this workspace uses.
//!
//! The build environment has no network access, so `crossbeam::channel` is
//! re-implemented here as a mutex+condvar MPMC queue. Both `Sender` and
//! `Receiver` are cloneable (std's mpsc receiver is not, which is why the
//! workspace depends on crossbeam in the first place). Disconnection
//! semantics match crossbeam: a channel is disconnected when all peers on
//! the other side have been dropped.

pub mod channel;
