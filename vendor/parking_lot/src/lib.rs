//! Offline shim for the `parking_lot` API subset this workspace uses.
//!
//! The build environment has no network access and no crates.io mirror, so
//! external dependencies are replaced by in-tree shims (see `vendor/` in the
//! repository root). This one wraps `std::sync::{Mutex, RwLock}` and strips
//! poisoning, which matches `parking_lot` semantics closely enough for our
//! callers: a panic while holding a lock does not poison it for others.
//!
//! Only the API actually used in-tree is provided: `Mutex::{new, lock}`,
//! `RwLock::{new, read, write}` and the corresponding guards.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike std, a
    /// panicked holder does not poison the lock.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Acquires exclusive write access.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
