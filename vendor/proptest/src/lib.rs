//! Offline shim for the `proptest` API subset this workspace uses.
//!
//! The build environment has no network access, so this crate provides a
//! deterministic mini property-testing framework with the same surface as
//! the upstream call sites: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, `any::<T>()`, range and tuple strategies, and
//! `proptest::collection::vec`. Each test runs a fixed number of cases from
//! a seed derived from the test name, so failures reproduce exactly across
//! runs. There is no shrinking: the failing case's inputs are reported via
//! `Debug` on assertion failure instead.

use std::marker::PhantomData;
use std::ops::Range;

/// Number of generated cases per property test.
pub const CASES: u64 = 96;

/// Deterministic SplitMix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator from a test name and case index.
    pub fn new(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of values for one property-test argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value. `case` is the zero-based case index, letting
    /// strategies bias early cases toward boundary values.
    fn generate(&self, rng: &mut TestRng, case: u64) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng, case: u64) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // Hit both boundaries in the earliest cases, then sample
                // uniformly: cheap substitute for upstream's edge biasing.
                match case {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => {
                        let span = (self.end as u128 - self.start as u128) as u64;
                        self.start + rng.below(span) as $t
                    }
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng, case: u64) -> i32 {
        assert!(self.start < self.end, "empty strategy range");
        match case {
            0 => self.start,
            1 => self.end - 1,
            _ => {
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as i32
            }
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng, case: u64) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        match case {
            0 => self.start,
            _ => {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + unit * (self.end - self.start)
            }
        }
    }
}

/// String pattern strategy: any `&str` pattern generates arbitrary short
/// strings (the workspace only uses `".*"`). Includes multi-byte characters
/// so UTF-8 handling gets exercised.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng, case: u64) -> String {
        const ALPHABET: &[char] =
            &['a', 'b', 'z', '0', '9', ' ', '_', '\n', 'é', 'ß', '→', '☃', '𝄞', '\u{0}'];
        if case == 0 {
            return String::new();
        }
        let len = rng.below(13) as usize;
        (0..len).map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize]).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng, case: u64) -> Self::Value {
                ($(self.$idx.generate(rng, case),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Types with a canonical "arbitrary value" strategy (see [`any`]).
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng, case: u64) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng, case: u64) -> $t {
                match case {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng, _case: u64) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng, case: u64) -> f64 {
        match case {
            0 => 0.0,
            1 => -1.0,
            _ => f64::from_bits(rng.next_u64() | 0x3FF0_0000_0000_0000) - 1.5,
        }
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng, case: u64) -> T {
        T::arbitrary(rng, case)
    }
}

/// The canonical strategy for `T`: `any::<u64>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element_strategy, len_range)`: vectors whose length is sampled
    /// from `len` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng, case: u64) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let len = match case {
                // Boundary lengths first (empty vectors are a classic
                // edge case), then uniform.
                0 => self.len.start,
                1 => self.len.end.saturating_sub(1).max(self.len.start),
                _ => self.len.start + (((rng.next_u64() as u128 * span as u128) >> 64) as usize),
            };
            // Elements always use the uniform path (case >= 2) so a vector
            // isn't all-boundary values.
            (0..len).map(|_| self.element.generate(rng, case.max(2))).collect()
        }
    }
}

/// Drives one property test: `CASES` deterministic cases, panicking with the
/// case number on the first failure. Used by the `proptest!` macro.
pub fn run_cases<F>(name: &str, mut f: F)
where
    F: FnMut(&mut TestRng, u64) -> Result<(), String>,
{
    for case in 0..CASES {
        let mut rng = TestRng::new(name, case);
        if let Err(msg) = f(&mut rng, case) {
            panic!("property `{name}` failed on case {case}/{CASES}: {msg}");
        }
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__rng, __case| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng, __case);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the current case (not the
/// whole process) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format_args!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside `proptest!`; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion `{} == {}` failed\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion `{} == {}` failed: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                ::std::format_args!($($fmt)+),
                left,
                right,
            ));
        }
    }};
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Generated values respect range bounds.
        #[test]
        fn ranges_in_bounds(a in 5u64..10, b in 0.0f64..1.0, c in 0u8..2) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((0.0..1.0).contains(&b), "b = {b}");
            prop_assert!(c < 2);
        }

        /// Vec strategy respects length bounds, including nesting.
        #[test]
        fn vec_lengths(v in crate::collection::vec(
            crate::collection::vec((any::<bool>(), 0u64..9), 1..4), 0..6)) {
            prop_assert!(v.len() < 6);
            for inner in &v {
                prop_assert!(!inner.is_empty() && inner.len() < 4);
                for (_, x) in inner {
                    prop_assert!(*x < 9);
                }
            }
        }

        /// String pattern strategy produces valid (possibly multibyte)
        /// strings.
        #[test]
        fn strings_generate(s in ".*") {
            prop_assert_eq!(s.chars().count() <= 13, true, "len {}", s.len());
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = super::TestRng::new("x", 3);
        let mut b = super::TestRng::new("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::new("y", 3);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_reports_case() {
        super::run_cases("always_fails", |_, _| Err("boom".into()));
    }
}
