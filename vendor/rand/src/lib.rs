//! Offline shim for the `rand` API subset this workspace uses.
//!
//! Workload generators only need a seedable, deterministic PRNG with
//! `gen_range` over integer/float ranges. The core generator is SplitMix64
//! (Steele et al., "Fast splittable pseudorandom number generators"), which
//! passes BigCrush at 64-bit output width and is trivially seedable from a
//! single u64 — exactly the `StdRng::seed_from_u64` contract callers rely
//! on. Streams differ from upstream `rand`'s ChaCha12-based `StdRng`, which
//! is fine: the workspace only requires reproducibility with itself.

use std::ops::Range;

/// Types that can construct themselves from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing random value API (subset).
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (half-open). Panics on empty ranges,
    /// matching upstream.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0,1]");
        f64_from_bits(self.next_u64()) < p
    }
}

/// Converts 64 random bits to a uniform f64 in [0, 1).
#[inline]
fn f64_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform-samplable primitive types.
pub trait SampleUniform: Sized {
    /// Samples uniformly from the half-open `range`.
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                // Widening-multiply rejection-free mapping (Lemire). The
                // modulo bias over a 128-bit intermediate is < 2^-64 —
                // irrelevant for simulation workloads.
                let v = (rng.next_u64() as u128 * span) >> 64;
                range.start.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + f64_from_bits(rng.next_u64()) * (range.end - range.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
